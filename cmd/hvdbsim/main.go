// Command hvdbsim runs simulation scenarios from flags and reports
// delivery and overhead metrics, tracing protocol events on request.
// Any registered protocol arm can be driven (-protocol), either with
// the default CBR workload or with a scripted dynamic scenario
// (-script): a built-in script name or a JSON script file with timed
// node churn, membership churn, traffic generators, radio degradation,
// and partition windows (see DESIGN.md "Protocol plane & scenario
// scripts" for the grammar).
//
// A single trial prints the full metric breakdown. With -trials N the
// scenario is replicated N times with positionally derived seeds
// (runner.DeriveSeed, so trial i sees the same world at any worker
// count) and the trials are fanned across -parallel workers; the output
// is then a per-metric mean with its 95% confidence half-width.
//
// With -fuzz N the tool switches to a scenario-fuzzing campaign
// (internal/scengen): N generated scripts are invariant-checked on
// worlds built from the same flags, every failure is shrunk to a
// minimal script written under -fuzzout, and the exit status is 1 if
// any invariant broke. Campaigns are deterministic in -fuzzseed, so a
// CI failure replays anywhere from the seed alone.
//
// Example:
//
//	hvdbsim -nodes 300 -groups 2 -members 12 -speed 10 -packets 30 -trace multicast
//	hvdbsim -nodes 300 -trials 16 -parallel 4
//	hvdbsim -protocol spbm -script churn-storm
//	hvdbsim -protocol cbt -script my-scenario.json -trials 8
//	hvdbsim -fuzz 500 -fuzzseed 7 -nodes 60 -loss 0.05
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"repro/internal/des"
	"repro/internal/membership"
	"repro/internal/network"
	"repro/internal/protocol"
	"repro/internal/radio"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/scengen"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hvdbsim: ")

	var (
		seed     = flag.Uint64("seed", 1, "PRNG seed")
		arena    = flag.Float64("arena", 2000, "arena side in meters")
		cell     = flag.Float64("cell", 250, "virtual circle tile side in meters")
		dim      = flag.Int("dim", 4, "hypercube dimension")
		nodes    = flag.Int("nodes", 200, "ordinary mobile nodes")
		groups   = flag.Int("groups", 1, "multicast groups")
		members  = flag.Int("members", 10, "members per group")
		speed    = flag.Float64("speed", 5, "max node speed m/s (0 = static)")
		packets  = flag.Int("packets", 20, "data packets per group (CBR mode; ignored with -script)")
		payload  = flag.Int("payload", 512, "payload bytes per packet (CBR mode)")
		warm     = flag.Float64("warmup", 15, "warm-up simulated seconds")
		loss     = flag.Float64("loss", 0, "per-transmission loss probability")
		proto    = flag.String("protocol", "hvdb", "protocol arm to drive (see -protocol help below)")
		script   = flag.String("script", "", "scripted scenario: a built-in name or a JSON script file")
		trials   = flag.Int("trials", 1, "independent trials (seeds derived per trial)")
		parallel = flag.Int("parallel", 0, "max concurrent trials (0 = GOMAXPROCS)")
		fuzzN    = flag.Int("fuzz", 0, "fuzz mode: generate and invariant-check this many scripts (see -fuzzseed, -fuzzout)")
		fuzzSeed = flag.Uint64("fuzzseed", 1, "campaign base seed for -fuzz (same seed: same scripts, same verdicts)")
		fuzzOut  = flag.String("fuzzout", ".", "directory for minimized failing scripts written by -fuzz")
		traceCat = flag.String("trace", "", "comma-separated trace categories (sim,mobility,radio,cluster,routes,membership,multicast)")
		shards   = flag.Int("shards", 1, "shard count for the sharded event kernel (1 = serial); results are identical at every setting")
	)
	flag.Parse()

	// Range-check the numeric flags up front: a bad value must exit 2
	// with a usage hint, not panic in a constructor or spin in a
	// degenerate run loop.
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "hvdbsim: "+format+"\n", args...)
		flag.Usage()
		os.Exit(2)
	}
	switch {
	case *nodes < 1:
		fail("-nodes must be >= 1 (got %d)", *nodes)
	case *groups < 1:
		fail("-groups must be >= 1 (got %d)", *groups)
	case *members < 1:
		fail("-members must be >= 1 (got %d)", *members)
	case *loss < 0 || *loss > 1:
		fail("-loss must be within [0,1] (got %g)", *loss)
	case *trials < 1:
		fail("-trials must be >= 1 (got %d)", *trials)
	case *dim < 1:
		fail("-dim must be >= 1 (got %d)", *dim)
	case *arena <= 0 || *cell <= 0:
		fail("-arena and -cell must be positive (got %g, %g)", *arena, *cell)
	case *packets < 1:
		fail("-packets must be >= 1 (got %d)", *packets)
	case *payload < 1:
		fail("-payload must be >= 1 (got %d)", *payload)
	case *warm < 0:
		fail("-warmup must be non-negative (got %g)", *warm)
	case *parallel < 0:
		fail("-parallel must be non-negative (got %d)", *parallel)
	case *fuzzN < 0:
		fail("-fuzz must be non-negative (got %d)", *fuzzN)
	case *shards < 1:
		fail("-shards must be >= 1 (got %d)", *shards)
	}
	if *shards > runtime.NumCPU() {
		// Still correct (results are shard-count independent), just
		// pointless: extra shards add barrier overhead with no cores to
		// run them on.
		log.Printf("warning: -shards %d exceeds the %d available CPUs", *shards, runtime.NumCPU())
	}
	if *shards > 1 && *traceCat != "" {
		// The network refuses to shard with a tracer bound (lane-local
		// emission would interleave nondeterministically); run serial
		// rather than silently dropping either flag.
		log.Printf("warning: -trace forces the serial kernel; ignoring -shards %d", *shards)
		*shards = 1
	}
	if *fuzzN > 0 {
		if *script != "" {
			fail("-fuzz generates its own scripts; it is mutually exclusive with -script")
		}
		if *traceCat != "" {
			fail("-fuzz does not support -trace")
		}
	}

	known := false
	for _, name := range protocol.Names() {
		if name == *proto {
			known = true
			break
		}
	}
	if !known {
		fmt.Fprintf(os.Stderr, "hvdbsim: unknown protocol %q\nusage: -protocol takes one of: %s\n",
			*proto, strings.Join(protocol.Names(), ", "))
		os.Exit(2)
	}

	var sc *scenario.Script
	if *script != "" {
		var err error
		sc, err = loadScript(*script)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hvdbsim: %v\nusage: -script takes a built-in name (%s) or a JSON script file\n",
				err, strings.Join(scenario.BuiltinScripts(), ", "))
			os.Exit(2)
		}
	}

	baseSpec := scenario.DefaultSpec()
	baseSpec.Seed = *seed
	baseSpec.ArenaSize = *arena
	baseSpec.CellSize = *cell
	baseSpec.Dim = *dim
	baseSpec.Nodes = *nodes
	baseSpec.Groups = *groups
	baseSpec.MembersPerGroup = *members
	baseSpec.LossProb = *loss
	baseSpec.Shards = *shards
	if *speed <= 0 {
		baseSpec.Mobility = scenario.Static
	} else {
		baseSpec.Mobility = scenario.Waypoint
		baseSpec.MinSpeed = 1
		baseSpec.MaxSpeed = *speed
	}

	if *fuzzN > 0 {
		os.Exit(runFuzz(baseSpec, *proto, *fuzzN, *fuzzSeed, *fuzzOut, *warm))
	}

	cfg := trialConfig{
		proto: *proto, script: sc,
		warm: *warm, packets: *packets, payload: *payload,
	}

	if *trials <= 1 {
		res, err := runTrial(baseSpec, cfg, *traceCat, true)
		if err != nil {
			log.Fatal(err)
		}
		printSingle(res)
		return
	}
	if *traceCat != "" {
		log.Fatal("-trace requires -trials 1 (interleaved traces are unreadable)")
	}

	results, err := runner.Map(runner.Config{Workers: *parallel}, *seed, *trials,
		func(r runner.Run) (trialResult, error) {
			spec := baseSpec
			spec.Seed = r.Seed
			return runTrial(spec, cfg, "", false)
		})
	if err != nil {
		log.Fatal(err)
	}
	printAggregate(*seed, results)
}

// runFuzz drives a scenario-fuzzing campaign: n generated scripts are
// invariant-checked (internal/scengen) on worlds built from the flag
// spec, each failure is shrunk and written as replayable JSON under
// outDir, and the returned exit status is 1 when any invariant broke.
func runFuzz(spec scenario.Spec, arm string, n int, seed uint64, outDir string, warm float64) int {
	prof := scengen.DefaultProfile()
	prof.Groups = spec.Groups // scripts may reference every flag-built group
	res := scengen.Campaign(scengen.CampaignConfig{
		Check:       scengen.CheckConfig{Spec: spec, Warmup: des.Duration(warm), Arms: []string{arm}},
		Profile:     prof,
		Seed:        seed,
		Scripts:     n,
		MaxFailures: 3,
		Log:         log.Printf,
	})
	if len(res.Failures) == 0 {
		fmt.Printf("fuzz: %d scripts checked on arm %s, no invariant violations (base seed %#x)\n",
			res.Scripts, arm, seed)
		return 0
	}
	for _, f := range res.Failures {
		min := f.Minimized
		if min == nil {
			min = f.Script
		}
		path := filepath.Join(outDir, fmt.Sprintf("scengen-fail-%016x.json", f.GenSeed))
		if err := os.WriteFile(path, scengen.ScriptJSON(min), 0o644); err != nil {
			log.Printf("writing %s: %v", path, err)
			path = "(not written)"
		}
		fmt.Printf("\nfuzz FAILURE at script %d:\n%s\nminimized script: %s\nreplay: hvdbsim -protocol %s -seed %#x -script %s\n",
			f.Index, f.Report, path, arm, f.WorldSeed, path)
	}
	fmt.Printf("\nfuzz: %d of %d scripts violated invariants (base seed %#x)\n",
		len(res.Failures), res.Scripts, seed)
	return 1
}

// loadScript resolves a -script argument: a built-in script name first,
// then a JSON file path.
func loadScript(arg string) (*scenario.Script, error) {
	if s, err := scenario.BuiltinScript(arg); err == nil {
		return s, nil
	}
	data, err := os.ReadFile(arg)
	if err != nil {
		return nil, fmt.Errorf("unknown built-in script and unreadable file: %v", err)
	}
	return scenario.ParseScript(data)
}

// trialConfig is the per-trial workload selection.
type trialConfig struct {
	proto   string
	script  *scenario.Script
	warm    float64
	packets int
	payload int
}

// trialResult is everything one scenario run reports.
type trialResult struct {
	desc                 string
	grid                 string
	proto                string
	script               string
	clusters             int
	endTime              float64
	expected, delivered  int
	stale                int
	meanDelay, p95Delay  float64
	ctlPerNodeS          float64
	dataBytes            uint64
	jain                 float64
	energyJ, energyMaxJ  float64
	chChanges, elections uint64
}

func (r trialResult) pdr() float64 {
	if r.expected == 0 {
		return 0
	}
	return float64(r.delivered) / float64(r.expected)
}

// runTrial builds one world, drives the warm-up and traffic phases
// through the selected protocol arm, and collects the metrics. Each
// call owns its world and simulator, so trials can run concurrently.
func runTrial(spec scenario.Spec, cfg trialConfig, traceCat string, verbose bool) (trialResult, error) {
	w, err := scenario.Build(spec)
	if err != nil {
		return trialResult{}, err
	}
	if spec.Shards > 1 && w.Eng == nil {
		log.Printf("warning: sharding declined, running serial: %s", w.ShardNote)
	}
	stk, err := w.Protocol(cfg.proto)
	if err != nil {
		return trialResult{}, err
	}
	if traceCat != "" {
		if err := wireTracer(w, cfg.proto, traceCat); err != nil {
			return trialResult{}, err
		}
	}

	res := trialResult{
		desc:  fmt.Sprint(w.Net),
		proto: cfg.proto,
		grid: fmt.Sprintf("grid %dx%d VCs, %d hypercubes of dim %d",
			w.Grid.Cols(), w.Grid.Rows(), w.Scheme.NumHypercubes(), w.Scheme.Dim()),
	}

	stk.Start()
	w.WarmUp(des.Duration(cfg.warm))
	res.clusters = len(w.CM.Heads())
	if verbose {
		fmt.Printf("%s | %s | protocol %s\n", res.desc, res.grid, cfg.proto)
		fmt.Printf("warm-up done at t=%.1fs: %d clusters headed\n", float64(w.Sim.Now()), res.clusters)
	}

	var delays stats.LogHist
	if cfg.script != nil {
		res.script = cfg.script.Name
		sr, err := w.RunScript(stk, cfg.script)
		if err != nil {
			return trialResult{}, err
		}
		res.expected, res.delivered, res.stale = sr.Expected, sr.Delivered, sr.Stale
		res.meanDelay, res.p95Delay = sr.MeanDelay, sr.P95Delay
	} else {
		// Traffic phase: CBR per group from a random source.
		stk.Deliveries(func(member network.NodeID, uid uint64, born des.Time, hops int) {
			res.delivered++
			delays.Add(float64(w.Sim.Now() - born))
		})
		for g := 0; g < spec.Groups; g++ {
			g := membership.Group(g)
			src := w.RandomSource()
			w.CBR(func() uint64 {
				uid := stk.Send(src, g, cfg.payload)
				if uid != 0 {
					res.expected += len(w.Members[g])
				}
				return uid
			}, 0.5, cfg.packets)
		}
		w.RunUntil(w.Sim.Now() + des.Duration(cfg.packets)*0.5 + 5)
		res.meanDelay = delays.Mean()
		res.p95Delay = delays.Percentile(95)
	}
	stk.Stop()

	st := w.Net.Stats()
	elapsed := float64(w.Sim.Now()) - cfg.warm
	res.endTime = float64(w.Sim.Now())
	res.ctlPerNodeS = float64(st.ControlBytes) / float64(w.Net.Len()) / elapsed
	res.dataBytes = st.DataBytes
	res.jain = stats.JainIndex(w.Net.ForwardLoads())
	for _, n := range w.Net.Nodes() {
		j := radio.DefaultEnergy.Consumed(n.TxBytes, n.RxBytes())
		res.energyJ += j
		if j > res.energyMaxJ {
			res.energyMaxJ = j
		}
	}
	res.chChanges = w.CM.Changes()
	res.elections = w.CM.Elections()
	return res, nil
}

// wireTracer installs the requested trace categories; the protocol
// plane tracers only exist on the hvdb arm.
func wireTracer(w *scenario.World, proto, traceCat string) error {
	var cats []trace.Category
	for _, name := range strings.Split(traceCat, ",") {
		found := false
		for c := trace.Category(0); c < trace.NumCategories; c++ {
			if c.String() == strings.TrimSpace(name) {
				cats = append(cats, c)
				found = true
			}
		}
		if !found {
			return fmt.Errorf("unknown trace category %q", name)
		}
	}
	tr := trace.NewWriter(os.Stderr, cats...)
	w.Net.SetTracer(tr)
	if proto == "hvdb" {
		w.CM.SetTracer(tr)
		w.BB.SetTracer(tr)
		w.MS.SetTracer(tr)
		w.MC.SetTracer(tr)
	}
	return nil
}

func printSingle(r trialResult) {
	if r.script != "" {
		fmt.Printf("\nscript %q results at t=%.1fs:\n", r.script, r.endTime)
	} else {
		fmt.Printf("\nresults at t=%.1fs:\n", r.endTime)
	}
	if r.expected > 0 {
		fmt.Printf("  delivery ratio      %.1f%% (%d of %d member deliveries)\n",
			100*r.pdr(), r.delivered, r.expected)
	}
	if r.stale > 0 {
		fmt.Printf("  stale deliveries    %d (to members that had left)\n", r.stale)
	}
	fmt.Printf("  mean delay          %.2f ms (p95 %.2f ms)\n", r.meanDelay*1000, r.p95Delay*1000)
	fmt.Printf("  control overhead    %.0f bytes/node/s\n", r.ctlPerNodeS)
	fmt.Printf("  data traffic        %d bytes total\n", r.dataBytes)
	fmt.Printf("  forwarding fairness %.3f (Jain index)\n", r.jain)
	fmt.Printf("  radio energy        %.3f J total, %.3f J at the busiest node\n", r.energyJ, r.energyMaxJ)
	fmt.Printf("  cluster stability   %d CH changes over %d elections\n", r.chChanges, r.elections)
}

func printAggregate(seed uint64, results []trialResult) {
	fmt.Printf("%s | %s | protocol %s\n", results[0].desc, results[0].grid, results[0].proto)
	if s := results[0].script; s != "" {
		fmt.Printf("script %q\n", s)
	}
	fmt.Printf("%d trials, seeds derived from base %d\n\n", len(results), seed)

	metric := func(name, unit string, get func(trialResult) float64) {
		xs := make([]float64, len(results))
		for i, r := range results {
			xs[i] = get(r)
		}
		mean, half := stats.MeanCI(xs)
		if unit != "" {
			unit = " " + unit
		}
		fmt.Printf("  %-19s %.3f ± %.3f%s\n", name, mean, half, unit)
	}
	anyExpected := false
	for _, r := range results {
		if r.expected > 0 {
			anyExpected = true
			break
		}
	}
	if anyExpected {
		metric("delivery ratio", "%", func(r trialResult) float64 { return 100 * r.pdr() })
	}
	if results[0].script != "" {
		metric("stale deliveries", "", func(r trialResult) float64 { return float64(r.stale) })
	}
	metric("mean delay", "ms", func(r trialResult) float64 { return r.meanDelay * 1000 })
	metric("p95 delay", "ms", func(r trialResult) float64 { return r.p95Delay * 1000 })
	metric("control overhead", "B/node/s", func(r trialResult) float64 { return r.ctlPerNodeS })
	metric("forwarding fairness", "(Jain)", func(r trialResult) float64 { return r.jain })
	metric("radio energy", "J", func(r trialResult) float64 { return r.energyJ })
	metric("CH changes", "", func(r trialResult) float64 { return float64(r.chChanges) })
	fmt.Printf("\n(± is the 95%% confidence half-width over %d trials)\n", len(results))
}
