// Command hvdblint runs the repository's determinism-lint suite
// (internal/lint) over Go package patterns: the maporder, seedsource,
// and poolpair analyzers that keep unordered map iteration, ambient
// entropy, and pool leaks out of simulation state (see DESIGN.md
// "Determinism lint").
//
// Exit status: 0 clean, 1 unsuppressed diagnostics found, 2 bad usage
// (unknown flag, unknown package pattern, or load failure) — the same
// convention as hvdbsim/hvdbmap/hvdbbench.
//
// Example:
//
//	hvdblint ./...
//	hvdblint -suppressed ./internal/qos
//	hvdblint -json ./... | jq '.[].file'
//	hvdblint -analyzers shardsafe,poolpair -timing ./...
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/lint"
)

func main() {
	var (
		jsonOut    = flag.Bool("json", false, "emit diagnostics as a JSON array for tooling")
		suppressed = flag.Bool("suppressed", false, "also list annotated (suppressed) sites with their reasons")
		analyzers  = flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
		timing     = flag.Bool("timing", false, "print per-analyzer, load, and summary wall time to stderr")
		budget     = flag.Duration("budget", 0, "fail (exit 1) if whole-run wall time — load + summaries + analyzers — exceeds this duration (0 disables)")
		shards     = flag.Int("shards", 1, "accepted for flag parity with the simulation tools (CI drives all four CLIs with a shared flag set); static analysis is shard-count independent")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: hvdblint [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(os.Stderr, "\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "hvdblint: -shards must be >= 1 (got %d)\n", *shards)
		flag.Usage()
		os.Exit(2)
	}
	selected, err := selectAnalyzers(*analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hvdblint: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}

	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "hvdblint: %v\n", err)
		os.Exit(2)
	}
	start := time.Now()
	pkgs, err := lint.Load(dir, flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hvdblint: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}
	loadTime := time.Since(start)
	res := lint.Analyze(pkgs, selected...)
	total := time.Since(start)

	if *timing {
		fmt.Fprintf(os.Stderr, "hvdblint: load %v (%d packages)\n", loadTime.Round(time.Millisecond), len(pkgs))
		fmt.Fprintf(os.Stderr, "hvdblint: summaries %v (cache: %d hit, %d miss)\n",
			res.Timing.Summary.Round(time.Millisecond), res.Timing.CacheHits, res.Timing.CacheMisses)
		names := make([]string, 0, len(res.Timing.PerAnalyzer))
		for name := range res.Timing.PerAnalyzer {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(os.Stderr, "hvdblint: analyzer %-12s %v\n", name, res.Timing.PerAnalyzer[name].Round(time.Millisecond))
		}
		fmt.Fprintf(os.Stderr, "hvdblint: total %v\n", total.Round(time.Millisecond))
	}

	out := res.Diags
	if *suppressed {
		out = append(out, res.Suppressed...)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if out == nil {
			out = []lint.Diagnostic{}
		}
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "hvdblint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range out {
			if d.Suppressed {
				fmt.Printf("%s [suppressed: %s]\n", d, d.Reason)
				continue
			}
			fmt.Println(d)
		}
	}
	exit := 0
	if len(res.Diags) > 0 {
		fmt.Fprintf(os.Stderr, "hvdblint: %d unsuppressed diagnostic(s) in %d package(s)\n", len(res.Diags), len(pkgs))
		exit = 1
	}
	if *budget > 0 && total > *budget {
		fmt.Fprintf(os.Stderr, "hvdblint: analysis took %v, over the %v budget (load %v, summaries %v)\n",
			total.Round(time.Millisecond), *budget, loadTime.Round(time.Millisecond), res.Timing.Summary.Round(time.Millisecond))
		exit = 1
	}
	os.Exit(exit)
}

// selectAnalyzers resolves the -analyzers CSV against the registered
// suite; an unknown name is a usage error (exit 2 + the valid names in
// usage output). An empty spec selects the full suite.
func selectAnalyzers(spec string) ([]*lint.Analyzer, error) {
	if spec == "" {
		return nil, nil
	}
	byName := map[string]*lint.Analyzer{}
	var valid []string
	for _, a := range lint.Analyzers() {
		byName[a.Name] = a
		valid = append(valid, a.Name)
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (valid: %s)", name, strings.Join(valid, ", "))
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-analyzers selected nothing (valid: %s)", strings.Join(valid, ", "))
	}
	return out, nil
}
