// Command hvdblint runs the repository's determinism-lint suite
// (internal/lint) over Go package patterns: the maporder, seedsource,
// and poolpair analyzers that keep unordered map iteration, ambient
// entropy, and pool leaks out of simulation state (see DESIGN.md
// "Determinism lint").
//
// Exit status: 0 clean, 1 unsuppressed diagnostics found, 2 bad usage
// (unknown flag, unknown package pattern, or load failure) — the same
// convention as hvdbsim/hvdbmap/hvdbbench.
//
// Example:
//
//	hvdblint ./...
//	hvdblint -suppressed ./internal/qos
//	hvdblint -json ./... | jq '.[].file'
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	var (
		jsonOut    = flag.Bool("json", false, "emit diagnostics as a JSON array for tooling")
		suppressed = flag.Bool("suppressed", false, "also list annotated (suppressed) sites with their reasons")
		shards     = flag.Int("shards", 1, "accepted for flag parity with the simulation tools (CI drives all four CLIs with a shared flag set); static analysis is shard-count independent")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: hvdblint [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(os.Stderr, "\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "hvdblint: -shards must be >= 1 (got %d)\n", *shards)
		flag.Usage()
		os.Exit(2)
	}

	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "hvdblint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(dir, flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hvdblint: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}
	res := lint.Analyze(pkgs)

	out := res.Diags
	if *suppressed {
		out = append(out, res.Suppressed...)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if out == nil {
			out = []lint.Diagnostic{}
		}
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "hvdblint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range out {
			if d.Suppressed {
				fmt.Printf("%s [suppressed: %s]\n", d, d.Reason)
				continue
			}
			fmt.Println(d)
		}
	}
	if len(res.Diags) > 0 {
		fmt.Fprintf(os.Stderr, "hvdblint: %d unsuppressed diagnostic(s) in %d package(s)\n", len(res.Diags), len(pkgs))
		os.Exit(1)
	}
}
