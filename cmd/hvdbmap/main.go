// Command hvdbmap renders an ASCII snapshot of the HVDB backbone after
// building and warming up a scenario: the VC grid with CH roles (a live
// Figure 2), one hypercube's label occupancy (a live Figure 3), and the
// mesh tier — before and, optionally, after failing part of the
// backbone.
//
//	hvdbmap -nodes 200 -warmup 10 -fail 12 -cube 0
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/des"
	"repro/internal/logicalid"
	"repro/internal/scenario"
	"repro/internal/viz"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hvdbmap: ")

	var (
		seed  = flag.Uint64("seed", 1, "PRNG seed")
		arena = flag.Float64("arena", 2000, "arena side in meters")
		dim   = flag.Int("dim", 4, "hypercube dimension")
		nodes = flag.Int("nodes", 200, "ordinary mobile nodes")
		speed = flag.Float64("speed", 5, "max node speed m/s (0 = static)")
		warm  = flag.Float64("warmup", 10, "warm-up simulated seconds")
		fail  = flag.Int("fail", 0, "anchor CHs to fail after warm-up")
		cube  = flag.Int("cube", 0, "hypercube to render in detail")
	)
	flag.Parse()

	spec := scenario.DefaultSpec()
	spec.Seed = *seed
	spec.ArenaSize = *arena
	spec.Dim = *dim
	spec.Nodes = *nodes
	if *speed <= 0 {
		spec.Mobility = scenario.Static
	} else {
		spec.Mobility = scenario.Waypoint
		spec.MaxSpeed = *speed
	}
	w, err := scenario.Build(spec)
	if err != nil {
		log.Fatal(err)
	}
	w.Start()
	w.Sim.RunUntil(des.Time(*warm))

	fmt.Println(viz.Summary(w.BB, w.CM))
	fmt.Println()
	fmt.Println("VC grid (B=border CH, i=inner CH, .=no CH):")
	fmt.Print(viz.GridView(w.BB))
	fmt.Println()
	fmt.Print(viz.CubeView(w.BB, logicalid.HID(*cube)))
	fmt.Println()
	fmt.Println("mesh tier:")
	fmt.Print(viz.MeshView(w.BB))

	if *fail > 0 {
		failed := w.FailRandomAnchors(*fail)
		w.CM.Elect()
		fmt.Printf("\n*** failed %d anchor CHs ***\n\n", len(failed))
		fmt.Println(viz.Summary(w.BB, w.CM))
		fmt.Println()
		fmt.Print(viz.GridView(w.BB))
		fmt.Println()
		fmt.Print(viz.CubeView(w.BB, logicalid.HID(*cube)))
		fmt.Println()
		fmt.Println("mesh tier:")
		fmt.Print(viz.MeshView(w.BB))
	}
	w.Stop()
}
