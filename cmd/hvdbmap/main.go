// Command hvdbmap renders an ASCII snapshot of the HVDB backbone after
// building and warming up a scenario: the VC grid with CH roles (a live
// Figure 2), one hypercube's label occupancy (a live Figure 3), and the
// mesh tier — before and, optionally, after failing part of the
// backbone.
//
//	hvdbmap -nodes 200 -warmup 10 -fail 12 -cube 0
//	hvdbmap -nodes 200 -trials 16 -parallel 4
//
// Flags follow the shared conventions of hvdbsim and hvdbbench: -seed
// seeds the PRNG, and with -trials N the scenario is replicated N times
// with positionally derived seeds (runner.DeriveSeed) fanned across
// -parallel workers. The map views are always rendered for the base
// seed; the trial replication aggregates backbone-health statistics
// (VCs headed, complete hypercubes, mesh occupancy) as mean ± 95%
// confidence half-width, so one invocation reports both one concrete
// backbone and how typical it is.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	"repro/internal/des"
	"repro/internal/logicalid"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/viz"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hvdbmap: ")

	var (
		seed     = flag.Uint64("seed", 1, "PRNG seed")
		arena    = flag.Float64("arena", 2000, "arena side in meters")
		dim      = flag.Int("dim", 4, "hypercube dimension")
		nodes    = flag.Int("nodes", 200, "ordinary mobile nodes")
		speed    = flag.Float64("speed", 5, "max node speed m/s (0 = static)")
		warm     = flag.Float64("warmup", 10, "warm-up simulated seconds")
		fail     = flag.Int("fail", 0, "anchor CHs to fail after warm-up")
		cube     = flag.Int("cube", 0, "hypercube to render in detail")
		trials   = flag.Int("trials", 1, "independent trials (seeds derived per trial)")
		parallel = flag.Int("parallel", 0, "max concurrent trials (0 = GOMAXPROCS)")
		shards   = flag.Int("shards", 1, "shard count for the sharded event kernel (1 = serial); the rendered backbone is identical at every setting")
	)
	flag.Parse()

	// Range-check the numeric flags up front: exit 2 with usage instead
	// of panicking in a constructor or looping on a degenerate sweep.
	badFlag := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "hvdbmap: "+format+"\n", args...)
		flag.Usage()
		os.Exit(2)
	}
	switch {
	case *nodes < 0 || *fail < 0 || *cube < 0:
		badFlag("-nodes, -fail, and -cube must be non-negative")
	case *dim < 1:
		badFlag("-dim must be >= 1 (got %d)", *dim)
	case *trials < 1:
		badFlag("-trials must be >= 1 (got %d)", *trials)
	case *arena <= 0:
		badFlag("-arena must be positive (got %g)", *arena)
	case *warm < 0:
		badFlag("-warmup must be non-negative (got %g)", *warm)
	case *parallel < 0:
		badFlag("-parallel must be non-negative (got %d)", *parallel)
	case *shards < 1:
		badFlag("-shards must be >= 1 (got %d)", *shards)
	}
	if *shards > runtime.NumCPU() {
		log.Printf("warning: -shards %d exceeds the %d available CPUs", *shards, runtime.NumCPU())
	}
	spec := scenario.DefaultSpec()
	spec.Seed = *seed
	spec.ArenaSize = *arena
	spec.Dim = *dim
	spec.Nodes = *nodes
	spec.Shards = *shards
	if *speed <= 0 {
		spec.Mobility = scenario.Static
	} else {
		spec.Mobility = scenario.Waypoint
		spec.MaxSpeed = *speed
	}

	renderMap(spec, *warm, *fail, *cube)

	if *trials > 1 {
		aggregate(spec, *warm, *fail, *trials, *parallel)
	}
}

// renderMap draws the base-seed backbone before and after failures.
func renderMap(spec scenario.Spec, warm float64, fail, cube int) {
	w, err := scenario.Build(spec)
	if err != nil {
		log.Fatal(err)
	}
	if n := w.Scheme.NumHypercubes(); cube >= n {
		fmt.Fprintf(os.Stderr, "hvdbmap: unknown hypercube %d\nusage: this arena has hypercubes 0..%d (-cube selects one to render)\n",
			cube, n-1)
		os.Exit(2)
	}
	w.Start()
	w.RunUntil(des.Time(warm))

	fmt.Println(viz.Summary(w.BB, w.CM))
	fmt.Println()
	fmt.Println("VC grid (B=border CH, i=inner CH, .=no CH):")
	fmt.Print(viz.GridView(w.BB))
	fmt.Println()
	fmt.Print(viz.CubeView(w.BB, logicalid.HID(cube)))
	fmt.Println()
	fmt.Println("mesh tier:")
	fmt.Print(viz.MeshView(w.BB))

	if fail > 0 {
		failed := w.FailRandomAnchors(fail)
		w.CM.Elect()
		fmt.Printf("\n*** failed %d anchor CHs ***\n\n", len(failed))
		fmt.Println(viz.Summary(w.BB, w.CM))
		fmt.Println()
		fmt.Print(viz.GridView(w.BB))
		fmt.Println()
		fmt.Print(viz.CubeView(w.BB, logicalid.HID(cube)))
		fmt.Println()
		fmt.Println("mesh tier:")
		fmt.Print(viz.MeshView(w.BB))
	}
	w.Stop()
}

// health is the backbone condition of one trial.
type health struct {
	headed, completeCubes, meshNodes float64
}

// aggregate replicates the scenario across derived seeds and reports
// backbone-health statistics.
func aggregate(base scenario.Spec, warm float64, fail, trials, parallel int) {
	results, err := runner.Map(runner.Config{Workers: parallel}, base.Seed, trials,
		func(r runner.Run) (health, error) {
			spec := base
			spec.Seed = r.Seed
			w, err := scenario.Build(spec)
			if err != nil {
				return health{}, err
			}
			w.Start()
			w.RunUntil(des.Time(warm))
			if fail > 0 {
				w.FailRandomAnchors(fail)
				w.CM.Elect()
			}
			var h health
			h.headed = float64(len(w.CM.Heads()))
			scheme := w.BB.Scheme()
			for i := 0; i < scheme.NumHypercubes(); i++ {
				c := w.BB.Cube(logicalid.HID(i))
				if c.Count() == c.Size() {
					h.completeCubes++
				}
			}
			h.meshNodes = float64(w.BB.Mesh().Count())
			w.Stop()
			return h, nil
		})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%d trials, seeds derived from base %d", trials, base.Seed)
	if fail > 0 {
		fmt.Printf(" (after failing %d anchors each)", fail)
	}
	fmt.Println()
	metric := func(name string, get func(health) float64) {
		xs := make([]float64, len(results))
		for i, h := range results {
			xs[i] = get(h)
		}
		mean, half := stats.MeanCI(xs)
		fmt.Printf("  %-20s %.2f ± %.2f\n", name, mean, half)
	}
	metric("VCs headed", func(h health) float64 { return h.headed })
	metric("complete hypercubes", func(h health) float64 { return h.completeCubes })
	metric("mesh nodes", func(h health) float64 { return h.meshNodes })
	fmt.Printf("(± is the 95%% confidence half-width over %d trials)\n", trials)
}
