package hvdb

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches markdown link targets: [text](target).
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocsLinksResolve walks every markdown file in the repository and
// verifies that intra-repo link targets exist, so DESIGN.md,
// EXPERIMENTS.md, README.md and friends cannot drift into broken
// cross-references. External (scheme-prefixed) and pure-anchor links
// are out of scope.
func TestDocsLinksResolve(t *testing.T) {
	var checked int
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".md") {
			return nil
		}
		body, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(body), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") ||
				strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (%v)", path, m[1], err)
			}
			checked++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if checked == 0 {
		t.Fatal("no intra-repo markdown links found; the checker is likely broken")
	}
}

// TestDocsPromisedFilesExist pins the documents that package comments
// and the README point readers at.
func TestDocsPromisedFilesExist(t *testing.T) {
	for _, name := range []string{
		"README.md", "DESIGN.md", "EXPERIMENTS.md", "PAPER.md", "ROADMAP.md",
	} {
		if _, err := os.Stat(name); err != nil {
			t.Errorf("%s is referenced by the docs but missing: %v", name, err)
		}
	}
}
