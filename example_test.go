package hvdb_test

import (
	"fmt"
	"log"

	hvdb "repro"
)

// Example reproduces the paper's running configuration and multicasts
// one packet through the full HVDB stack.
func Example() {
	spec := hvdb.DefaultSpec()
	spec.Nodes = 60
	spec.Groups = 1
	spec.MembersPerGroup = 5
	spec.Mobility = hvdb.Static

	w, err := hvdb.Build(spec)
	if err != nil {
		log.Fatal(err)
	}
	w.Start()
	w.WarmUp(12)

	uid := w.MC.Send(w.RandomSource(), 0, 256)
	w.Sim.RunUntil(w.Sim.Now() + 5)
	w.Stop()

	fmt.Println("delivered to all members:", w.MC.DeliveryCount(uid) == len(w.Members[0]))
	// Output: delivered to all members: true
}
