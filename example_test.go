package hvdb_test

import (
	"fmt"
	"log"

	hvdb "repro"
)

// Example reproduces the paper's running configuration and multicasts
// one packet through the full HVDB stack.
func Example() {
	spec := hvdb.DefaultSpec()
	spec.Nodes = 60
	spec.Groups = 1
	spec.MembersPerGroup = 5
	spec.Mobility = hvdb.Static

	w, err := hvdb.Build(spec)
	if err != nil {
		log.Fatal(err)
	}
	w.Start()
	w.WarmUp(12)

	uid := w.MC.Send(w.RandomSource(), 0, 256)
	w.Sim.RunUntil(w.Sim.Now() + 5)
	w.Stop()

	fmt.Println("delivered to all members:", w.MC.DeliveryCount(uid) == len(w.Members[0]))
	// Output: delivered to all members: true
}

// ExampleExperimentIDs lists the experiment harness index (see
// DESIGN.md for what each reproduces and EXPERIMENTS.md for recorded
// results).
func ExampleExperimentIDs() {
	for _, id := range hvdb.ExperimentIDs() {
		fmt.Printf("%-5s %s\n", id, hvdb.ExperimentTitle(id))
	}
	// Output:
	// c1    claim: high availability via disjoint paths
	// c2    claim: load balancing vs tree-based backbone
	// c3    claim: control overhead scalability
	// c4    claim: small diameter / few logical hops
	// c5    protocol comparison (PDR/delay/overhead)
	// c6    group dynamics: delivery under membership churn
	// f1    HVDB model construction (Fig. 1)
	// f2    8x8 VC / four 4-D hypercube decomposition (Fig. 2)
	// f3    4-D hypercube label layout (Fig. 3)
	// f4    proactive local logical route maintenance (Fig. 4)
	// f5    summary-based membership update (Fig. 5)
	// f6    logical location-based multicast routing (Fig. 6)
	// scale simulator scale sweep up to 100,000-node worlds
	// stress scripted stress scenarios: 6 protocol arms x 3 dynamic scripts
}
