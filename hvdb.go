// Package hvdb is a reproduction of "A Novel QoS Multicast Model in
// Mobile Ad Hoc Networks" (Wang, Cao, Zhang, Chan, Wu — IPDPS 2005): the
// logical Hypercube-based Virtual Dynamic Backbone (HVDB) for QoS-aware
// multicast in large-scale MANETs, together with the discrete-event
// MANET simulator it is evaluated on and the related schemes it is
// compared against.
//
// This root package is the public facade. Typical use:
//
//	spec := hvdb.DefaultSpec()
//	spec.Nodes = 400
//	spec.Groups = 2
//	w, err := hvdb.Build(spec)
//	if err != nil { ... }
//	w.Start()                      // clustering + route + membership planes
//	w.WarmUp(15)                   // simulated seconds
//	uid := w.MC.Send(w.RandomSource(), 0, 512)
//	w.Sim.RunUntil(w.Sim.Now() + 5)
//	fmt.Println(w.MC.DeliveryCount(uid))
//
// The experiment harness that regenerates every figure of the paper and
// quantifies each of its claims is exposed through RunExperiment; see
// DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
// results.
//
// Architecture (bottom-up; DESIGN.md expands every entry):
//
//	internal/des        discrete-event kernel (pooled event heap)
//	internal/geom       plane geometry
//	internal/xrand      deterministic PRNG
//	internal/stats      samples, confidence intervals, Jain index
//	internal/trace      category-tagged protocol event tracing
//	internal/mobility   random waypoint / walk / Gauss-Markov / group
//	internal/radio      unit-disc radio, delay and bandwidth model
//	internal/network    nodes, packets, incremental neighbor index
//	internal/gps        positioning service (oracle + noisy)
//	internal/vcgrid     virtual circles (paper §3, Fig. 2 geometry)
//	internal/cluster    mobility-prediction clustering ([23]; paper §3)
//	internal/hypercube  labels, e-cube routing, disjoint paths, trees
//	internal/logicalid  CHID/HNID/HID/MNID identifier algebra (§4.1)
//	internal/meshtier   incomplete 2-D mesh tier (§3)
//	internal/georoute   greedy + perimeter location-based unicast ([11])
//	internal/core       the HVDB backbone + Figure 4 route maintenance
//	internal/membership Figure 5 summary-based membership update
//	internal/multicast  Figure 6 logical location-based multicast
//	internal/qos        session admission over backbone routes
//	internal/baseline   flooding, DSM-, PBM-, SPBM-, CBT-like schemes
//	internal/protocol   uniform Stack interface + arm registry
//	internal/scenario   world construction, traffic, scenario scripts
//	internal/runner     parallel run harness (positional seeding)
//	internal/experiment figure/claim/scale/stress regeneration harness
//	internal/viz        ASCII backbone renderings (cmd/hvdbmap)
package hvdb

import (
	"io"

	"repro/internal/des"
	"repro/internal/experiment"
	"repro/internal/membership"
	"repro/internal/network"
	"repro/internal/protocol"
	"repro/internal/qos"
	"repro/internal/scenario"
)

// Spec declares a simulation scenario; see scenario.Spec for the field
// documentation.
type Spec = scenario.Spec

// World is a fully wired simulation: network, clustering, backbone,
// membership, and multicast planes.
type World = scenario.World

// Group identifies a multicast group.
type Group = membership.Group

// NodeID identifies a node.
type NodeID = network.NodeID

// Time is simulated seconds.
type Time = des.Time

// MobilityKind selects a movement model in Spec.
type MobilityKind = scenario.MobilityKind

// Mobility models for Spec.Mobility.
const (
	Static      = scenario.Static
	Waypoint    = scenario.Waypoint
	Walk        = scenario.Walk
	GaussMarkov = scenario.GaussMarkov
	GroupMotion = scenario.GroupMotion
	Manhattan   = scenario.Manhattan
)

// DefaultSpec returns the paper's running example configuration: a
// 2000x2000 m arena of 8x8 virtual circles forming four 4-dimensional
// logical hypercubes, with anchor CHs and 200 mobile nodes.
func DefaultSpec() Spec { return scenario.DefaultSpec() }

// Build wires a world from a spec.
func Build(spec Spec) (*World, error) { return scenario.Build(spec) }

// QoSManager admits and releases bandwidth-reserving multicast sessions
// over a world's backbone (hard IntServ-like or soft DiffServ-like
// admission; see internal/qos).
type QoSManager = qos.Manager

// QoS admission modes.
const (
	HardQoS = qos.Hard
	SoftQoS = qos.Soft
)

// NewQoS returns a session manager over the world's protocol stack.
func NewQoS(w *World) *QoSManager { return qos.NewManager(w.BB, w.MS, w.MC) }

// SessionID identifies an admitted QoS session.
type SessionID = qos.SessionID

// Protocol is the uniform surface of one multicast arm — HVDB or any of
// the compared baseline schemes. Build one by name with World.Protocol;
// see internal/protocol for the interface contract.
type Protocol = protocol.Stack

// ProtocolStats is the uniform counter snapshot of one arm.
type ProtocolStats = protocol.Stats

// Protocols lists the registered protocol arm names.
func Protocols() []string { return protocol.Names() }

// Script is a deterministic timetable of mid-run dynamics — node and
// membership churn, traffic generators, radio degradation, partitions —
// played against a world with World.RunScript.
type Script = scenario.Script

// Directive is one timed action of a Script.
type Directive = scenario.Directive

// ScriptResult reports the measured outcome of one script run.
type ScriptResult = scenario.ScriptResult

// ParseScript decodes and validates a JSON scenario script.
func ParseScript(data []byte) (*Script, error) { return scenario.ParseScript(data) }

// BuiltinScripts lists the built-in stress scenario names.
func BuiltinScripts() []string { return scenario.BuiltinScripts() }

// BuiltinScript returns a fresh copy of one built-in stress scenario.
func BuiltinScript(name string) (*Script, error) { return scenario.BuiltinScript(name) }

// ExperimentIDs lists the available experiments (f1..f6 regenerate the
// paper's figures; c1..c6 quantify its claims).
func ExperimentIDs() []string { return experiment.IDs() }

// ExperimentTitle describes one experiment.
func ExperimentTitle(id string) string { return experiment.Title(id) }

// ExperimentOptions sizes an experiment run. Its Workers field fans the
// experiment's independent runs across a worker pool (internal/runner);
// tables are byte-identical at every worker count for a given seed.
type ExperimentOptions = experiment.Options

// FullOptions runs experiments at the size recorded in EXPERIMENTS.md.
func FullOptions() ExperimentOptions { return experiment.DefaultOptions() }

// QuickOptions runs reduced experiments suitable for smoke tests.
func QuickOptions() ExperimentOptions { return experiment.QuickOptions() }

// RunExperiment executes one experiment and writes its tables to w.
func RunExperiment(w io.Writer, id string, o ExperimentOptions) error {
	tables, err := experiment.Run(id, o)
	if err != nil {
		return err
	}
	for _, t := range tables {
		if _, err := io.WriteString(w, t.String()+"\n"); err != nil {
			return err
		}
	}
	return nil
}
