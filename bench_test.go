// Benchmarks: one target per reproduced figure and evaluated claim
// (BenchmarkFig*/BenchmarkClaim*), ablation benches for the design
// choices DESIGN.md calls out (BenchmarkAblation*), and micro-benches of
// the hot computational kernels. Figure/claim benches run the reduced
// (Quick) experiment configurations so -bench completes in minutes; the
// full-size runs are produced by cmd/hvdbbench and recorded in
// EXPERIMENTS.md.
package hvdb

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/experiment"
	"repro/internal/geom"
	"repro/internal/hypercube"
	"repro/internal/logicalid"
	"repro/internal/membership"
	"repro/internal/multicast"
	"repro/internal/network"
	"repro/internal/scenario"
	"repro/internal/vcgrid"
	"repro/internal/xrand"
)

// benchExperiment runs one experiment per iteration at quick scale.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	o := experiment.QuickOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.Seed = uint64(i + 1)
		if _, err := experiment.Run(id, o); err != nil {
			b.Fatal(err)
		}
	}
}

// Figure benches — one per paper figure (see DESIGN.md experiment index).

func BenchmarkFig1ModelConstruction(b *testing.B) { benchExperiment(b, "f1") }
func BenchmarkFig2GridDecomposition(b *testing.B) { benchExperiment(b, "f2") }
func BenchmarkFig3LabelLayout(b *testing.B)       { benchExperiment(b, "f3") }
func BenchmarkFig4RouteMaintenance(b *testing.B)  { benchExperiment(b, "f4") }
func BenchmarkFig5Membership(b *testing.B)        { benchExperiment(b, "f5") }
func BenchmarkFig6Multicast(b *testing.B)         { benchExperiment(b, "f6") }

// Claim benches — one per evaluated claim.

func BenchmarkClaimAvailability(b *testing.B)  { benchExperiment(b, "c1") }
func BenchmarkClaimLoadBalance(b *testing.B)   { benchExperiment(b, "c2") }
func BenchmarkClaimScalability(b *testing.B)   { benchExperiment(b, "c3") }
func BenchmarkClaimDiameter(b *testing.B)      { benchExperiment(b, "c4") }
func BenchmarkProtocolComparison(b *testing.B) { benchExperiment(b, "c5") }
func BenchmarkClaimChurn(b *testing.B)         { benchExperiment(b, "c6") }

// Ablation: plain-binary (the paper's Figure 3 layout) vs Gray-coded
// grid-to-label mapping. The metric is the mean physical length (in
// cells) of a logical hypercube link: Gray labels make every in-block
// link grid-adjacent, the paper's layout trades half of them for
// two-cell jumps.
func BenchmarkAblationLabelMapping(b *testing.B) {
	grid := vcgrid.New(geom.RectWH(0, 0, 2000, 2000), 250)
	run := func(b *testing.B, opts ...logicalid.Option) {
		var total, links, maxLen int
		for i := 0; i < b.N; i++ {
			s, err := logicalid.New(grid, 4, opts...)
			if err != nil {
				b.Fatal(err)
			}
			total, links, maxLen = 0, 0, 0
			for _, vc := range s.BlockVCs(0) {
				p := s.PlaceOf(vc)
				for _, nb := range hypercube.AllNeighbors(p.HNID, 4) {
					w := s.VCAt(0, nb)
					if grid.Valid(w) {
						d := vcgrid.DistVCs(vc, w)
						total += d
						links++
						if d > maxLen {
							maxLen = d
						}
					}
				}
			}
		}
		// Both mappings average 1.5 cells per logical link, but the
		// binary layout bounds the longest link at 2 cells while Gray's
		// axis wraparound (00<->10) spans 3 — the paper's choice keeps
		// the worst-case physical realization of a logical hop shorter.
		b.ReportMetric(float64(total)/float64(links), "cells/logical-link")
		b.ReportMetric(float64(maxLen), "max-cells/link")
	}
	b.Run("binary", func(b *testing.B) { run(b) })
	b.Run("gray", func(b *testing.B) { run(b, logicalid.WithGrayLabels()) })
}

// Ablation: the local route horizon k (paper: "k is a system parameter,
// e.g. k = 4") — table size and beacon cost vs reach.
func BenchmarkAblationHorizonK(b *testing.B) {
	for _, k := range []int{1, 2, 4, 6} {
		b.Run(string(rune('0'+k)), func(b *testing.B) {
			var known float64
			var ctrl uint64
			for i := 0; i < b.N; i++ {
				spec := scenario.DefaultSpec()
				spec.Seed = uint64(i + 1)
				spec.Nodes = 0
				w, err := scenario.Build(spec)
				if err != nil {
					b.Fatal(err)
				}
				cfg := core.DefaultConfig()
				cfg.K = k
				cfg.RouteTTL = 1000
				mux := network.Bind(w.Net)
				w.BB = core.New(w.Net, mux, w.CM, w.Scheme, cfg)
				w.CM.Elect()
				for r := 0; r < k+1; r++ {
					w.BB.BeaconRound()
					w.Sim.RunUntil(w.Sim.Now() + cfg.BeaconPeriod)
				}
				known = float64(w.BB.KnownDestinations(0))
				ctrl = w.Net.Stats().ControlBytes
			}
			b.ReportMetric(known, "dests-known")
			b.ReportMetric(float64(ctrl)/1024, "ctrl-KiB")
		})
	}
}

// Ablation: hypercube dimension for a fixed 8x8 VC region — fewer,
// larger cubes vs more, smaller ones.
func BenchmarkAblationDimension(b *testing.B) {
	for _, dim := range []int{2, 4, 6} {
		b.Run(string(rune('0'+dim)), func(b *testing.B) {
			var hops float64
			for i := 0; i < b.N; i++ {
				spec := scenario.DefaultSpec()
				spec.Seed = uint64(i + 1)
				spec.Dim = dim
				spec.Nodes = 0
				w, err := scenario.Build(spec)
				if err != nil {
					b.Fatal(err)
				}
				w.CM.Elect()
				rng := xrand.New(uint64(i + 1))
				var total, pairs int
				for p := 0; p < 50; p++ {
					a := logicalid.CHID(rng.Intn(w.Grid.Count()))
					c := logicalid.CHID(rng.Intn(w.Grid.Count()))
					if a == c {
						continue
					}
					if d, ok := w.BB.LogicalReach(a, 64)[c]; ok {
						total += d
						pairs++
					}
				}
				if pairs > 0 {
					hops = float64(total) / float64(pairs)
				}
			}
			b.ReportMetric(hops, "logical-hops")
		})
	}
}

// Ablation: the designated-broadcaster criterion of §4.2 — the paper's
// self+neighbors criterion vs self-only vs a fixed broadcaster.
func BenchmarkAblationBroadcaster(b *testing.B) {
	policies := map[string]membership.DesignationPolicy{
		"self+neighbors": membership.DesignateSelfPlusNeighbors,
		"self":           membership.DesignateSelf,
		"fixed":          membership.DesignateFixed,
	}
	for name, policy := range policies {
		b.Run(name, func(b *testing.B) {
			var broadcasts uint64
			for i := 0; i < b.N; i++ {
				spec := scenario.DefaultSpec()
				spec.Seed = uint64(i + 1)
				spec.Nodes = 64
				spec.Groups = 2
				spec.MembersPerGroup = 8
				spec.Mobility = scenario.Static
				w, err := scenario.Build(spec)
				if err != nil {
					b.Fatal(err)
				}
				mcfg := membership.DefaultConfig()
				mcfg.Designation = policy
				mcfg.LocalTTL = 0
				ms := membership.New(w.BB, mcfg)
				for g, members := range w.Members {
					for _, id := range members {
						ms.Join(id, g)
					}
				}
				ms.LocalRound()
				w.Sim.RunUntil(w.Sim.Now() + 2)
				ms.MNTRound()
				w.Sim.RunUntil(w.Sim.Now() + 5)
				ms.HTRound()
				w.Sim.RunUntil(w.Sim.Now() + 10)
				broadcasts = ms.HTBroadcasts
			}
			b.ReportMetric(float64(broadcasts), "ht-broadcasts")
		})
	}
}

// Ablation: multicast tree caching on/off (the paper caches trees "for
// future use").
func BenchmarkAblationTreeCache(b *testing.B) {
	run := func(b *testing.B, ttl des.Duration) {
		var computes uint64
		for i := 0; i < b.N; i++ {
			spec := scenario.DefaultSpec()
			spec.Seed = uint64(i + 1)
			spec.Nodes = 64
			spec.Groups = 1
			spec.MembersPerGroup = 10
			spec.Mobility = scenario.Static
			w, err := scenario.Build(spec)
			if err != nil {
				b.Fatal(err)
			}
			mcfg := multicast.DefaultConfig()
			mcfg.CacheTTL = ttl
			w.MC = multicast.New(w.BB, w.MS, w.Mux, mcfg)
			w.Start()
			w.WarmUp(12)
			src := w.RandomSource()
			for p := 0; p < 10; p++ {
				w.MC.Send(src, 0, 256)
				w.Sim.RunUntil(w.Sim.Now() + 0.3)
			}
			w.Sim.RunUntil(w.Sim.Now() + 3)
			w.Stop()
			computes = w.MC.TreeComputes
		}
		b.ReportMetric(float64(computes), "tree-computes")
	}
	b.Run("cached", func(b *testing.B) { run(b, 100) })
	b.Run("uncached", func(b *testing.B) { run(b, 0) })
}

// Micro-benches of the computational kernels.

func BenchmarkHypercubeRoute(b *testing.B) {
	c := hypercube.Complete(10)
	rng := xrand.New(1)
	// Punch some holes so the BFS fallback is exercised.
	for i := 0; i < 200; i++ {
		c.Remove(hypercube.Label(rng.Intn(c.Size())))
	}
	labels := c.Labels()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := labels[i%len(labels)]
		dst := labels[(i*7+3)%len(labels)]
		c.Route(src, dst)
	}
}

func BenchmarkHypercubeMulticastTree(b *testing.B) {
	c := hypercube.Complete(8)
	rng := xrand.New(2)
	dests := make([]hypercube.Label, 20)
	for i := range dests {
		dests[i] = hypercube.Label(rng.Intn(c.Size()))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.MulticastTree(hypercube.Label(i%c.Size()), dests)
	}
}

func BenchmarkDisjointPaths(b *testing.B) {
	for i := 0; i < b.N; i++ {
		hypercube.DisjointPaths(0, hypercube.Label(i%63+1), 6)
	}
}

func BenchmarkDESThroughput(b *testing.B) {
	sim := des.New()
	n := 0
	var chain func()
	chain = func() {
		n++
		if n < b.N {
			sim.After(0.001, chain)
		}
	}
	b.ResetTimer()
	sim.Schedule(0, chain)
	sim.Run()
}

func BenchmarkNeighborQuery(b *testing.B) {
	spec := scenario.DefaultSpec()
	spec.Nodes = 500
	w, err := scenario.Build(spec)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Net.Neighbors(network.NodeID(i % w.Net.Len()))
	}
}

func BenchmarkEndToEndMulticast(b *testing.B) {
	spec := scenario.DefaultSpec()
	spec.Nodes = 100
	spec.Groups = 1
	spec.MembersPerGroup = 10
	spec.Mobility = scenario.Static
	w, err := scenario.Build(spec)
	if err != nil {
		b.Fatal(err)
	}
	w.Start()
	w.WarmUp(12)
	src := w.RandomSource()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		uid := w.MC.Send(src, 0, 512)
		w.Sim.RunUntil(w.Sim.Now() + 0.2)
		w.MC.ForgetPacket(uid)
	}
}

// Ablation: GPS positioning error — the model assumes GPS; this sweeps
// how much per-axis Gaussian error the logical-location machinery
// tolerates before clustering destabilizes and delivery suffers.
func BenchmarkAblationGPSError(b *testing.B) {
	for _, sigma := range []float64{0, 10, 30, 60} {
		name := fmt.Sprintf("%.0fm", sigma)
		b.Run(name, func(b *testing.B) {
			var pdr, chChanges float64
			for i := 0; i < b.N; i++ {
				spec := scenario.DefaultSpec()
				spec.Seed = uint64(i + 1)
				spec.Nodes = 80
				spec.Groups = 1
				spec.MembersPerGroup = 10
				spec.Mobility = scenario.Static
				spec.GPSError = sigma
				w, err := scenario.Build(spec)
				if err != nil {
					b.Fatal(err)
				}
				w.Start()
				w.WarmUp(12)
				delivered := 0
				w.MC.OnDeliver(func(network.NodeID, uint64, des.Time, int) { delivered++ })
				sent := 0
				src := w.RandomSource()
				for p := 0; p < 8; p++ {
					if w.MC.Send(src, 0, 256) != 0 {
						sent++
					}
					w.Sim.RunUntil(w.Sim.Now() + 0.5)
				}
				w.Sim.RunUntil(w.Sim.Now() + 5)
				w.Stop()
				if sent > 0 {
					pdr = float64(delivered) / float64(sent*10)
				}
				chChanges = float64(w.CM.Changes())
			}
			b.ReportMetric(pdr, "pdr")
			b.ReportMetric(chChanges, "ch-changes")
		})
	}
}
