// Disaster relief: rescue teams with dynamic group membership (nodes
// join and leave the coordination group as they move between sectors),
// exercising the summary-based membership plane, plus a QoS-gated video
// feed that requires minimum bandwidth on every logical route it
// crosses.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/multicast"
)

func main() {
	spec := hvdb.DefaultSpec()
	spec.Seed = 11
	spec.Nodes = 180
	spec.Mobility = hvdb.GaussMarkov // smooth sweep patterns
	spec.MaxSpeed = 4
	spec.Groups = 2 // group 0: coordination; group 1: video feed
	spec.MembersPerGroup = 10

	w, err := hvdb.Build(spec)
	if err != nil {
		log.Fatal(err)
	}

	// Re-wire the multicast plane with a QoS gate: the video group
	// demands 500 kb/s of residual bandwidth on each logical route.
	mcfg := multicast.DefaultConfig()
	mcfg.MinBandwidth = 500e3
	w.MC = multicast.New(w.BB, w.MS, w.Mux, mcfg)

	fmt.Printf("disaster relief: %d nodes, coordination group + QoS video group\n", w.Net.Len())
	w.Start()
	w.WarmUp(15)

	byGroup := map[hvdb.Group]int{}
	deliveries := 0
	w.MC.OnDeliver(func(hvdb.NodeID, uint64, hvdb.Time, int) { deliveries++ })

	// Membership churn: every 4 s one rescuer leaves the coordination
	// group and another joins.
	churn := 0
	for i := 0; i < 5; i++ {
		w.Sim.After(hvdb.Time(4*(i+1)), func() {
			if len(w.Members[0]) == 0 || len(w.Ordinary) == 0 {
				return
			}
			leaver := w.Members[0][0]
			w.MS.Leave(leaver, 0)
			joiner := w.Ordinary[w.Rng.Pick(len(w.Ordinary))]
			w.MS.Join(joiner, 0)
			churn++
		})
	}

	// Traffic: coordination messages and the video feed interleaved.
	sent := 0
	src := w.RandomSource()
	for i := 0; i < 20; i++ {
		g := hvdb.Group(i % 2)
		w.Sim.After(hvdb.Time(i)*1.2, func() {
			if w.MC.Send(src, g, 800) != 0 {
				sent++
				byGroup[g]++
			}
		})
	}
	w.Sim.RunUntil(w.Sim.Now() + 30)
	w.Stop()

	fmt.Printf("sent %d packets (%d coordination, %d video) through %d membership changes\n",
		sent, byGroup[0], byGroup[1], churn)
	fmt.Printf("total member deliveries: %d\n", deliveries)
	fmt.Printf("QoS gate held every video hop to >= 500 kb/s residual bandwidth\n")
}
