// Vehicular: emergency warnings in a vehicular network (one of the
// paper's motivating applications) — fast nodes on a large arena, where
// the HVDB is compared head-to-head against flooding on the same world:
// same warning traffic, radically different channel cost.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/baseline"
)

func run(useFlooding bool) {
	spec := hvdb.DefaultSpec()
	spec.Seed = 3
	spec.ArenaSize = 3000 // 12x12 VCs, nine 4-D hypercubes
	spec.Nodes = 250
	spec.Mobility = hvdb.Manhattan // vehicles follow the street grid
	spec.MaxSpeed = 18             // m/s along streets
	spec.Groups = 1
	spec.MembersPerGroup = 30 // vehicles subscribed to warnings

	w, err := hvdb.Build(spec)
	if err != nil {
		log.Fatal(err)
	}
	name := "hvdb"
	var flood *baseline.Flooding
	if useFlooding {
		name = "flooding"
		p, err := w.Baseline("flooding")
		if err != nil {
			log.Fatal(err)
		}
		flood = p.(*baseline.Flooding)
	}

	w.Start()
	w.WarmUp(12)

	delivered := 0
	count := func(hvdb.NodeID, uint64, hvdb.Time, int) { delivered++ }
	if flood != nil {
		flood.OnDeliver(count)
	} else {
		w.MC.OnDeliver(count)
	}

	// Ten emergency warnings from vehicles at random positions.
	sent := 0
	for i := 0; i < 10; i++ {
		src := w.RandomSource()
		var uid uint64
		if flood != nil {
			uid = flood.Send(src, 0, 128)
		} else {
			uid = w.MC.Send(src, 0, 128)
		}
		if uid != 0 {
			sent++
		}
		w.Sim.RunUntil(w.Sim.Now() + 1)
	}
	w.Sim.RunUntil(w.Sim.Now() + 5)
	w.Stop()

	st := w.Net.Stats()
	expected := sent * len(w.Members[0])
	fmt.Printf("%-9s delivery %4.0f%%   data on air %7d bytes   control %8d bytes\n",
		name, 100*float64(delivered)/float64(expected), st.DataBytes, st.ControlBytes)
}

func main() {
	fmt.Println("vehicular emergency warnings: HVDB vs flooding on identical worlds")
	run(false)
	run(true)
	fmt.Println("\nflooding pays for every warning with a transmission per vehicle;")
	fmt.Println("the HVDB pays a bounded backbone overhead instead")
}
