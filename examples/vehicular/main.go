// Vehicular: emergency warnings in a vehicular network (one of the
// paper's motivating applications) — fast nodes on a large arena, where
// the HVDB is compared head-to-head against flooding on identically
// specced worlds: same warning traffic, radically different channel
// cost. Both arms run through the uniform protocol registry, so the
// drive loop is a single code path.
package main

import (
	"fmt"
	"log"

	"repro"
)

func run(name string) {
	spec := hvdb.DefaultSpec()
	spec.Seed = 3
	spec.ArenaSize = 3000 // 12x12 VCs, nine 4-D hypercubes
	spec.Nodes = 250
	spec.Mobility = hvdb.Manhattan // vehicles follow the street grid
	spec.MaxSpeed = 18             // m/s along streets
	spec.Groups = 1
	spec.MembersPerGroup = 30 // vehicles subscribed to warnings

	w, err := hvdb.Build(spec)
	if err != nil {
		log.Fatal(err)
	}
	stk, err := w.Protocol(name)
	if err != nil {
		log.Fatal(err)
	}

	stk.Start()
	w.WarmUp(12)

	delivered := 0
	stk.Deliveries(func(hvdb.NodeID, uint64, hvdb.Time, int) { delivered++ })

	// Ten emergency warnings from vehicles at random positions.
	sent := 0
	for i := 0; i < 10; i++ {
		if stk.Send(w.RandomSource(), 0, 128) != 0 {
			sent++
		}
		w.Sim.RunUntil(w.Sim.Now() + 1)
	}
	w.Sim.RunUntil(w.Sim.Now() + 5)
	stk.Stop()

	st := w.Net.Stats()
	expected := sent * len(w.Members[0])
	fmt.Printf("%-9s delivery %4.0f%%   data on air %7d bytes   control %8d bytes\n",
		name, 100*float64(delivered)/float64(expected), st.DataBytes, st.ControlBytes)
}

func main() {
	fmt.Println("vehicular emergency warnings: HVDB vs flooding on identical worlds")
	run("hvdb")
	run("flooding")
	fmt.Println("\nflooding pays for every warning with a transmission per vehicle;")
	fmt.Println("the HVDB pays a bounded backbone overhead instead")
}
