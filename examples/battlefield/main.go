// Battlefield: the paper's motivating scenario — units moving as groups
// (reference point group mobility), heterogeneous capability (vehicle
// anchors act as cluster heads, foot soldiers as ordinary nodes), and
// node failures mid-session. Demonstrates the availability property:
// multicast keeps flowing while anchor CHs die, because the incomplete
// hypercube retains alternate logical routes.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	spec := hvdb.DefaultSpec()
	spec.Seed = 7
	spec.Nodes = 160
	spec.Mobility = hvdb.GroupMotion // squads move together
	spec.MinSpeed = 2
	spec.MaxSpeed = 6
	spec.Groups = 1
	spec.MembersPerGroup = 20 // the command net

	w, err := hvdb.Build(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("battlefield: %d vehicle anchors, %d dismounted nodes, command net of %d\n",
		len(w.Anchors), len(w.Ordinary), spec.MembersPerGroup)

	w.Start()
	w.WarmUp(15)

	delivered := map[bool]int{} // phase: false=before failures, true=after
	phase := false
	w.MC.OnDeliver(func(member hvdb.NodeID, uid uint64, born hvdb.Time, hops int) {
		delivered[phase]++
	})

	send := func(n int) int {
		sent := 0
		src := w.RandomSource()
		for i := 0; i < n; i++ {
			if w.MC.Send(src, 0, 256) != 0 {
				sent++
			}
			w.Sim.RunUntil(w.Sim.Now() + 0.5)
		}
		w.Sim.RunUntil(w.Sim.Now() + 5)
		return sent
	}

	members := len(w.Members[0])
	sentBefore := send(10)
	fmt.Printf("phase 1 (intact backbone): %d/%d deliveries\n",
		delivered[false], sentBefore*members)

	// Combat losses: a fifth of the vehicle anchors go down at once.
	lost := w.FailRandomAnchors(len(w.Anchors) / 5)
	fmt.Printf("\n*** %d anchor CHs destroyed ***\n", len(lost))
	phase = true
	// Give the backbone a few seconds to re-elect and re-beacon.
	w.Sim.RunUntil(w.Sim.Now() + 8)

	sentAfter := send(10)
	w.Stop()
	fmt.Printf("phase 2 (degraded backbone): %d/%d deliveries\n",
		delivered[true], sentAfter*members)
	fmt.Printf("\nthe incomplete hypercube's spare logical routes kept the command net alive\n")
}
