// QoS sessions: exercise the session-admission layer over the HVDB —
// hard (IntServ-like) admission with reservation and rollback, soft
// (DiffServ-like) admission with coverage reporting, and the capacity
// exhaustion point of the backbone (the paper's §2.3: "high availability
// and even distribution of traffic over the network are a prerequisite
// for the economical provisioning of QoS").
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	spec := hvdb.DefaultSpec()
	spec.Seed = 5
	spec.Nodes = 120
	spec.Mobility = hvdb.Static
	spec.Groups = 1
	spec.MembersPerGroup = 14

	w, err := hvdb.Build(spec)
	if err != nil {
		log.Fatal(err)
	}
	w.Start()
	w.WarmUp(14)

	qm := hvdb.NewQoS(w)
	src := w.RandomSource()

	// Hard admission: 2 Mb/s video sessions until the backbone refuses.
	fmt.Println("hard (IntServ-like) admission of 2 Mb/s sessions:")
	var ids []hvdb.SessionID
	for i := 1; ; i++ {
		s, err := qm.Open(src, 0, 2e6, hvdb.HardQoS)
		if err != nil {
			fmt.Printf("  session %d REJECTED: %v\n", i, err)
			break
		}
		ids = append(ids, s.ID)
		fmt.Printf("  session %d admitted: %d CHs reserved, backbone utilization %.0f%%\n",
			i, len(s.Reserved), qm.Utilization()*100)
		if i > 20 {
			break
		}
	}

	// Soft admission still succeeds, reporting partial coverage.
	s, err := qm.Open(src, 0, 2e6, hvdb.SoftQoS)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsoft (DiffServ-like) admission on the saturated backbone: coverage %.0f%%\n",
		s.Coverage()*100)
	fmt.Println("(the paper: soft QoS suits highly dynamic MANETs better than hard QoS)")

	// Release everything; utilization returns to the soft session only.
	for _, id := range ids {
		qm.Close(id)
	}
	fmt.Printf("\nafter closing the hard sessions: utilization %.1f%%, %d active\n",
		qm.Utilization()*100, qm.Active())
	w.Stop()
}
