// Quickstart: build the paper's running example (an 8x8 virtual-circle
// MANET forming four 4-dimensional logical hypercubes), start the HVDB
// protocol stack, multicast a few packets, and print what happened.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	spec := hvdb.DefaultSpec()
	spec.Nodes = 150
	spec.Groups = 1
	spec.MembersPerGroup = 12
	spec.Mobility = hvdb.Waypoint
	spec.MaxSpeed = 5

	w, err := hvdb.Build(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %v\n", w.Net)
	fmt.Printf("logical structure: %d hypercubes of dimension %d over %dx%d virtual circles\n",
		w.Scheme.NumHypercubes(), w.Scheme.Dim(), w.Grid.Cols(), w.Grid.Rows())

	// Start clustering, route maintenance, and membership planes; let
	// them converge.
	w.Start()
	w.WarmUp(15)
	fmt.Printf("after warm-up: %d clusters have heads\n", len(w.CM.Heads()))

	// Observe deliveries.
	delivered := 0
	w.MC.OnDeliver(func(member hvdb.NodeID, uid uint64, born hvdb.Time, hops int) {
		delivered++
		fmt.Printf("  delivery: member %d got packet %d after %.1f ms (%d logical hops)\n",
			member, uid, float64(w.Sim.Now()-born)*1000, hops)
	})

	// Multicast five packets from a random node to group 0.
	src := w.RandomSource()
	sent := 0
	for i := 0; i < 5; i++ {
		if uid := w.MC.Send(src, 0, 512); uid != 0 {
			sent++
		}
		w.Sim.RunUntil(w.Sim.Now() + 1)
	}
	w.Sim.RunUntil(w.Sim.Now() + 5)
	w.Stop()

	members := len(w.Members[0])
	fmt.Printf("\nsent %d packets to a %d-member group: %d deliveries (%.0f%% of %d expected)\n",
		sent, members, delivered, 100*float64(delivered)/float64(sent*members), sent*members)
	st := w.Net.Stats()
	fmt.Printf("control %d bytes, data %d bytes, %d lost transmissions\n",
		st.ControlBytes, st.DataBytes, st.Lost)
}
